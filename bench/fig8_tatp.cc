// Figure 8 — TATP throughput vs number of nodes.
//
// Paper setup: 20M subscribers per node, workload partitioned by
// subscriber id. Paper shape: linear scalability — once each partition's
// pages are cached by their node, PLocks are acquired once per page and
// never move, so multi-primary adds no overhead to a partitionable
// workload.

#include "bench/bench_util.h"
#include "workload/tatp.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  if (std::getenv("POLARMP_BENCH_THREADS") == nullptr) {
    // TATP transactions are cheap; one worker per node keeps the 8-node
    // point below the single-core host's CPU ceiling so the linearity of
    // the system (not the host) is what gets measured.
    cfg.threads_per_node = 1;
  }
  PrintFigureHeader("Figure 8", "TATP throughput vs nodes (partitioned)");

  double baseline = 0;
  for (int nodes : cfg.NodeSweep({1, 2, 4, 8})) {
    auto db = PolarMpDatabase::Create(MakeBenchClusterOptions(nodes), nodes);
    if (!db.ok()) {
      std::fprintf(stderr, "cluster: %s\n", db.status().ToString().c_str());
      return 1;
    }
    TatpOptions wopts;
    wopts.num_nodes = nodes;
    wopts.subscribers_per_node = 10'000;
    TatpWorkload workload(wopts);
    const DriverResult result = SetupAndRun(db->get(), &workload, nodes, cfg);
    if (nodes == 1) baseline = result.throughput;
    PrintRow("TATP nodes=" + std::to_string(nodes), result.throughput,
             baseline > 0 ? result.throughput / baseline : 1.0,
             result.abort_rate(),
             static_cast<double>(result.latency.Percentile(95)) / 1e6);
  }
  std::printf("\npaper reference: linear scalability (no inter-node data "
              "transfer once partitions are cached)\n");
  bench::EmitMetricsSidecar("fig8_tatp");
  return 0;
}
