// Figure 12 — PolarDB-MP vs Aurora-MM vs Taurus-MM under light conflict
// (10% shared data).
//
// Paper shape: even at 10% sharing Aurora-MM's optimistic concurrency
// control stalls — no gain from 2 to 4 nodes in read-write, and 2/4-node
// write-only throughput BELOW a single node (conflict aborts burn the
// work). Taurus-MM scales moderately; PolarDB-MP scales best. Aurora-MM
// supports at most 4 nodes.

#include "baselines/aurora_mm.h"
#include "baselines/taurus_mm.h"
#include "bench/bench_util.h"
#include "workload/sysbench.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

namespace {

void RunSeries(const char* name,
               const std::function<std::unique_ptr<Database>(int)>& make,
               SysbenchOptions::Mix mix, const std::vector<int>& nodes,
               const BenchConfig& cfg) {
  double baseline = 0;
  for (int n : nodes) {
    std::unique_ptr<Database> db = make(n);
    if (db == nullptr) continue;  // node count unsupported (Aurora > 4)
    SysbenchOptions wopts;
    wopts.num_nodes = n;
    wopts.mix = mix;
    wopts.shared_pct = 10;
    SysbenchWorkload workload(wopts);
    const DriverResult result = SetupAndRun(db.get(), &workload, n, cfg);
    if (n == 1) baseline = result.throughput;
    PrintRow(std::string(name) + " nodes=" + std::to_string(n),
             result.throughput,
             baseline > 0 ? result.throughput / baseline : 1.0,
             result.abort_rate(),
             static_cast<double>(result.latency.Percentile(95)) / 1e6);
  }
}

}  // namespace

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  if (std::getenv("POLARMP_BENCH_THREADS") == nullptr) {
    // OCC abort probability scales with in-flight concurrency; the paper's
    // 28-core nodes ran far more sysbench clients than our default two.
    cfg.threads_per_node = 4;
  }
  PrintFigureHeader("Figure 12",
                    "PolarDB-MP vs Aurora-MM vs Taurus-MM, 10% shared");

  auto make_polar = [](int n) -> std::unique_ptr<Database> {
    auto db = PolarMpDatabase::Create(MakeBenchClusterOptions(n), n);
    if (!db.ok()) std::exit(1);
    return std::move(db).value();
  };
  auto make_taurus = [](int n) -> std::unique_ptr<Database> {
    TaurusMmDatabase::Options opts;
    opts.profile = BenchLatencyProfile();
    opts.nodes = n;
    return std::make_unique<TaurusMmDatabase>(opts);
  };
  auto make_aurora = [](int n) -> std::unique_ptr<Database> {
    if (n > 4) return nullptr;  // "Aurora-MM supports up to only 4 nodes"
    return std::make_unique<AuroraMmDatabase>(BenchLatencyProfile(), n);
  };

  for (auto mix : {SysbenchOptions::Mix::kReadWrite,
                   SysbenchOptions::Mix::kWriteOnly}) {
    std::printf("--- %s, 10%% shared ---\n",
                mix == SysbenchOptions::Mix::kReadWrite ? "read-write"
                                                        : "write-only");
    const std::vector<int> nodes = cfg.NodeSweep({1, 2, 4, 8});
    RunSeries("PolarDB-MP", make_polar, mix, nodes, cfg);
    RunSeries("Taurus-MM ", make_taurus, mix, nodes, cfg);
    RunSeries("Aurora-MM ", make_aurora, mix, nodes, cfg);
  }
  std::printf("\npaper reference: Aurora-MM flat 2->4 nodes (read-write) and "
              "below single-node (write-only); Polar > Taurus > Aurora\n");
  bench::EmitMetricsSidecar("fig12_light_conflict");
  return 0;
}
