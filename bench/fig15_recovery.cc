// Figure 15 — recovery: per-node throughput timeline across a node crash.
//
// Paper setup: two nodes on disjoint table groups running SysBench
// read-write; node 1 is killed at t=15 s and restarted immediately.
// Paper shape: node 2's throughput is completely unaffected; node 1 is
// back to full throughput within ~10 s because recovery fetches most pages
// from disaggregated memory instead of storage.
//
// Scaled down: crash at t=4 s (POLARMP_BENCH_CRASH_MS), run 12 s total.
//
// Extended beyond the paper's figure with an online-takeover phase: before
// node 1 restarts, node 2 performs Cluster::TakeoverNode — reclaiming the
// dead node's PLocks, rolling back its in-flight transactions and replaying
// its log tail — while node 2's own workers keep committing. The sidecar's
// cluster.takeovers counter proves the phase ran; under POLARMP_FAULT_SEED
// the whole timeline additionally runs on a fault-injecting fabric.

#include <thread>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "common/random.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

namespace {
constexpr int64_t kRows = 4'000;

Status OneTxn(DbNode* node, const TableHandle& table, Random* rng) {
  Session session(node, IsolationLevel::kReadCommitted);
  POLARMP_RETURN_IF_ERROR(session.Begin());
  for (int i = 0; i < 6; ++i) {
    const int64_t key = 1 + static_cast<int64_t>(rng->Uniform(kRows));
    auto v = session.Get(table, key);
    if (!v.ok() && !v.status().IsNotFound()) return v.status();
  }
  for (int i = 0; i < 2; ++i) {
    const int64_t key = 1 + static_cast<int64_t>(rng->Uniform(kRows));
    POLARMP_RETURN_IF_ERROR(session.Put(table, key, std::string(64, 'w')));
  }
  return session.Commit();
}
}  // namespace

int main() {
  const uint64_t crash_ms =
      std::getenv("POLARMP_BENCH_CRASH_MS")
          ? std::strtoull(std::getenv("POLARMP_BENCH_CRASH_MS"), nullptr, 10)
          : 4'000;
  const uint64_t total_ms = crash_ms * 3;
  PrintFigureHeader("Figure 15", "per-node throughput across a node crash");

  ClusterOptions copts = MakeBenchClusterOptions(2);
  // Let redo accumulate (no checkpoints) so the restart performs a real
  // replay whose pages come from the DBP fast path.
  copts.node.checkpoint_interval_ms = 3'600'000;
  auto cluster = Cluster::Create(copts).value();
  DbNode* node1 = cluster->AddNode().value();
  DbNode* node2 = cluster->AddNode().value();
  cluster->CreateTable("fig15_t1").status().ok();
  cluster->CreateTable("fig15_t2").status().ok();

  SetSimTimeScale(0.0);
  for (DbNode* node : {node1, node2}) {
    TableHandle table =
        node->OpenTable(node == node1 ? "fig15_t1" : "fig15_t2").value();
    Session session(node, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    for (int64_t k = 1; k <= kRows; ++k) {
      session.Insert(table, k, std::string(64, 'v')).ok();
    }
    session.Commit().ok();
  }
  SetSimTimeScale(1.0);
  // Chaos mode: the timeline, the crash and the online takeover all run
  // under the seeded fault plan (the load above does not).
  bench::ArmChaosFromEnv(cluster->fabric());

  const size_t seconds = total_ms / 1000 + 2;
  std::vector<std::atomic<uint64_t>> node1_tl(seconds), node2_tl(seconds);
  for (auto& a : node1_tl) a.store(0);
  for (auto& a : node2_tl) a.store(0);
  std::atomic<bool> stop{false};
  std::atomic<bool> node1_up{true};
  const NodeId crash_id = node1->id();
  const auto t0 = std::chrono::steady_clock::now();

  auto worker = [&](int which, int seed) {
    Random rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      DbNode* node;
      std::vector<std::atomic<uint64_t>>* timeline;
      if (which == 1) {
        if (!node1_up.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        node = cluster->node(crash_id);
        timeline = &node1_tl;
        if (node == nullptr || !node->running()) continue;
      } else {
        node = node2;
        timeline = &node2_tl;
      }
      auto table = node->OpenTable(which == 1 ? "fig15_t1" : "fig15_t2");
      if (!table.ok()) continue;
      if (OneTxn(node, table.value(), &rng).ok()) {
        const size_t sec = static_cast<size_t>(
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (sec < seconds) (*timeline)[sec].fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(worker, 1, 11);
  threads.emplace_back(worker, 1, 12);
  threads.emplace_back(worker, 2, 21);
  threads.emplace_back(worker, 2, 22);

  std::this_thread::sleep_for(std::chrono::milliseconds(crash_ms));
  std::printf("t=%.1fs: killing node 1\n",
              static_cast<double>(crash_ms) / 1000);
  const uint64_t storage_reads_before = cluster->page_store()->reads();
  const uint64_t dbp_fetches_before = cluster->buffer_fusion()->fetches();
  node1_up.store(false);
  // Let in-flight transactions on node 1 drain before yanking it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  cluster->CrashNode(crash_id).ok();
  const auto crash_done = std::chrono::steady_clock::now();

  // Phase 1 — online takeover: node 2 reclaims node 1's locks, rolls back
  // its in-flight transactions and replays its log tail while its own
  // workers keep committing. This is what survivors do in production; the
  // restart below then measures the dead node's own cold rejoin.
  auto takeover = cluster->TakeoverNode(crash_id, node2->id());
  const double takeover_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    crash_done)
          .count();
  if (!takeover.ok()) {
    std::fprintf(stderr, "takeover: %s\n",
                 takeover.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "node 2 took over node 1 online in %.3fs (%llu records scanned, "
      "%llu uncommitted trx rolled back) without pausing its own traffic\n",
      takeover_s,
      static_cast<unsigned long long>(takeover.value().records_scanned),
      static_cast<unsigned long long>(takeover.value().offline_rolled_back));

  // Phase 2 — the crashed node rejoins; its replay starts from the
  // checkpoint the takeover advanced, so the rejoin is nearly instant.
  const auto restart_t0 = std::chrono::steady_clock::now();
  auto restarted = cluster->RestartNode(crash_id);
  const double recovery_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    restart_t0)
          .count();
  if (!restarted.ok()) {
    std::fprintf(stderr, "restart: %s\n",
                 restarted.status().ToString().c_str());
    return 1;
  }
  std::printf("node 1 recovered in %.2fs (%llu pages via DBP, %llu storage "
              "reads); resuming traffic\n",
              recovery_s,
              static_cast<unsigned long long>(
                  cluster->buffer_fusion()->fetches() - dbp_fetches_before),
              static_cast<unsigned long long>(cluster->page_store()->reads() -
                                              storage_reads_before));
  node1_up.store(true);

  std::this_thread::sleep_for(
      std::chrono::milliseconds(total_ms - crash_ms - 300));
  stop.store(true);
  for (auto& t : threads) t.join();

  std::printf("\n%-6s %12s %12s\n", "sec", "node1 tps", "node2 tps");
  for (size_t s = 0; s + 1 < seconds; ++s) {
    std::printf("%-6zu %12llu %12llu\n", s,
                static_cast<unsigned long long>(node1_tl[s].load()),
                static_cast<unsigned long long>(node2_tl[s].load()));
  }
  std::printf("\npaper reference: node 2 unaffected; node 1 resumes within "
              "~10 s, recovering mostly from disaggregated memory\n");
  bench::EmitMetricsSidecar("fig15_recovery");
  return 0;
}
