// Compute-side index-cache microbenchmark (ISSUE 7): hit/miss/invalidation
// sweep plus a fabric-ops table.
//
// Phase 1 — read-only point lookups on ONE node, cache off vs cache on.
// Every lookup descends the clustered B-tree; without the cache each
// internal level costs a PLock pin and (on LBP miss) Buffer Fusion traffic,
// with it the descent routes through cached internal images and touches
// only the leaf. The headline column is fabric round trips per committed
// (read-only) transaction, which the cache must cut.
//
// Phase 2 — invalidation churn on TWO nodes: node 0 runs the same readers
// while node 1 splits leaves (dense appends) and periodically checkpoints,
// one-sided invalidating node 0's cached images. Measures how the hit rate
// and the stale-reject/refresh traffic behave under continuous SMOs.
//
// Phase 3 — LBP pressure: 1 KiB pages deepen the tree and a 64-frame LBP
// cannot hold the working set, so without the cache every descent level is
// a Buffer Fusion round trip. This is the regime the cache exists for.
//
// Standard bench env knobs apply (POLARMP_BENCH_MEASURE_MS,
// POLARMP_BENCH_WARMUP_MS, POLARMP_BENCH_THREADS); POLARMP_INDEX_CACHE=0
// forces the cache off everywhere (phase 1 toggles it per point anyway).
// Emits the usual metrics sidecar, which carries every index_cache.*
// family plus the derived fabric_ops_per_txn.

#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "node/session.h"
#include "obs/metrics.h"

namespace polarmp {
namespace {

constexpr int64_t kSeedRows = 8'000;

struct Point {
  double reads_per_sec = 0;
  double fabric_ops_per_read = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale_rejects = 0;
  uint64_t refreshes = 0;
};

uint64_t FabricOpsTotal() {
  const auto& reg = obs::MetricsRegistry::Global();
  return reg.CounterTotal("fabric.remote_reads") +
         reg.CounterTotal("fabric.remote_writes") +
         reg.CounterTotal("fabric.remote_atomics") +
         reg.CounterTotal("fabric.rpcs");
}

void SeedRows(DbNode* node, const TableHandle& table, int64_t begin,
              int64_t end) {
  SetSimTimeScale(0.0);
  for (int64_t k = begin; k < end; k += 2'000) {
    Session s(node, IsolationLevel::kReadCommitted);
    POLARMP_CHECK(s.Begin().ok());
    const int64_t batch_end = std::min(end, k + 2'000);
    for (int64_t i = k; i < batch_end; ++i) {
      POLARMP_CHECK(s.Insert(table, i, "cache-bench-row").ok());
    }
    POLARMP_CHECK(s.Commit().ok());
  }
  SetSimTimeScale(1.0);
}

struct PointOpts {
  bool cache_on = true;
  // Adds a splitting/checkpointing writer on a second node.
  bool churn_writer = false;
  // 0 keeps the cluster defaults. Small pages deepen the tree; few LBP
  // frames force the descent's pages out of the local pool.
  uint32_t page_size = 0;
  uint32_t lbp_frames = 0;
  uint32_t cache_slots = 0;
  int64_t rows = kSeedRows;
};

Point RunPoint(const PointOpts& po, const bench::BenchConfig& cfg) {
  const int nodes = po.churn_writer ? 2 : 1;
  ClusterOptions options = bench::MakeBenchClusterOptions(nodes);
  options.node.cache.enabled =
      options.node.cache.enabled && po.cache_on;  // env can only force OFF
  if (po.page_size != 0) {
    options.page_size = po.page_size;
    options.node.lbp.page_size = po.page_size;
  }
  if (po.lbp_frames != 0) options.node.lbp.frames = po.lbp_frames;
  if (po.cache_slots != 0) options.node.cache.slots = po.cache_slots;
  auto cluster = Cluster::Create(options).value();
  std::vector<DbNode*> db;
  for (int i = 0; i < nodes; ++i) db.push_back(cluster->AddNode().value());
  POLARMP_CHECK(cluster->CreateTable("ic").ok());
  std::vector<TableHandle> tables;
  for (DbNode* n : db) tables.push_back(n->OpenTable("ic").value());
  SeedRows(db[0], tables[0], 0, po.rows);
  // Push the freshly loaded tree to the DBP (a just-bulk-loaded table is
  // flushed in any real deployment). Without this the seeded internals sit
  // dirty-local and are not cacheable until LBP churn pushes them.
  SetSimTimeScale(0.0);
  POLARMP_CHECK(db[0]->Checkpoint().ok());
  SetSimTimeScale(1.0);

  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads_per_node; ++t) {
    workers.emplace_back([&, t] {
      Random rng(0xCACE + t);
      Session s(db[0], IsolationLevel::kReadCommitted);
      while (!stop.load(std::memory_order_relaxed)) {
        if (!s.Begin().ok()) break;
        const int64_t key = static_cast<int64_t>(rng.Uniform(po.rows));
        const bool ok = s.Get(tables[0], key).ok();
        if (s.Commit().ok() && ok &&
            measuring.load(std::memory_order_relaxed)) {
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  if (po.churn_writer) {
    workers.emplace_back([&] {
      int64_t next = po.rows;
      int batches = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Session s(db[1], IsolationLevel::kReadCommitted);
        if (!s.Begin().ok()) break;
        bool ok = true;
        for (int i = 0; i < 50 && ok; ++i) {
          ok = s.Insert(tables[1], next++, "churn-row").ok();
        }
        if (!s.Commit().ok()) continue;
        // Every few batches push the dirty pages so the split's internal-
        // page updates one-sided invalidate node 0's cached images.
        if (++batches % 4 == 0) (void)db[1]->Checkpoint();
      }
    });
  }

  IndexCache* cache = db[0]->index_cache();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const uint64_t ops0 = FabricOpsTotal();
  const uint64_t hits0 = cache->hits();
  const uint64_t miss0 = cache->misses();
  const uint64_t stale0 = cache->stale_rejects();
  const uint64_t refresh0 = cache->one_sided_refreshes();
  measuring.store(true);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  const uint64_t count = reads.load();
  const uint64_t ops1 = FabricOpsTotal();
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true);
  for (auto& w : workers) w.join();

  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  Point p;
  p.reads_per_sec = static_cast<double>(count) / secs;
  p.fabric_ops_per_read =
      count > 0 ? static_cast<double>(ops1 - ops0) / static_cast<double>(count)
                : 0.0;
  p.hits = cache->hits() - hits0;
  p.misses = cache->misses() - miss0;
  p.stale_rejects = cache->stale_rejects() - stale0;
  p.refreshes = cache->one_sided_refreshes() - refresh0;
  return p;
}

void PrintPoint(const char* label, const Point& p) {
  const uint64_t routed = p.hits + p.misses;
  std::printf(
      "  %-26s %9.0f reads/s   fabric ops/read %6.2f   hit rate %5.1f%%   "
      "stale rejects %llu   refreshes %llu\n",
      label, p.reads_per_sec, p.fabric_ops_per_read,
      routed > 0 ? 100.0 * static_cast<double>(p.hits) /
                       static_cast<double>(routed)
                 : 0.0,
      static_cast<unsigned long long>(p.stale_rejects),
      static_cast<unsigned long long>(p.refreshes));
}

}  // namespace
}  // namespace polarmp

int main() {
  using namespace polarmp;
  const bench::BenchConfig cfg = bench::BenchConfig::FromEnv();
  bench::PrintFigureHeader(
      "micro_cache", "compute-side index cache: hits, misses, invalidation");

  std::printf("\n-- phase 1: read-only point lookups, 1 node --\n");
  PointOpts warm;
  warm.cache_on = false;
  const Point off = RunPoint(warm, cfg);
  PrintPoint("cache off", off);
  warm.cache_on = true;
  const Point on = RunPoint(warm, cfg);
  PrintPoint("cache on", on);
  if (off.fabric_ops_per_read > 0) {
    std::printf("  fabric ops/read reduction: %.1f%%\n",
                100.0 * (1.0 - on.fabric_ops_per_read /
                                   off.fabric_ops_per_read));
  }

  std::printf(
      "\n-- phase 2: invalidation churn, 2 nodes (reader + splitting "
      "writer) --\n");
  // Remote splits rewrite internal pages, revoking the reader's PLocks on
  // them; an unrouted descent re-pins every level through Lock Fusion while
  // a routed one touches only the leaf.
  PointOpts churny;
  churny.churn_writer = true;
  churny.cache_on = false;
  const Point churn_off = RunPoint(churny, cfg);
  PrintPoint("cache off + remote SMOs", churn_off);
  churny.cache_on = true;
  const Point churn = RunPoint(churny, cfg);
  PrintPoint("cache on + remote SMOs", churn);
  if (churn_off.fabric_ops_per_read > 0) {
    std::printf("  fabric ops/read reduction under churn: %.1f%%\n",
                100.0 * (1.0 - churn.fabric_ops_per_read /
                                   churn_off.fabric_ops_per_read));
  }

  std::printf(
      "\n-- phase 3: LBP pressure (1 KiB pages, deep tree, tiny LBP) --\n");
  // The regime the cache targets: the working set dwarfs the LBP, so every
  // descent level is an LBP miss. Cache off pays the Buffer Fusion
  // register/fetch cycle per internal level; cache on routes through the
  // cached images and pays it only for the leaf. A warm LBP (phase 1) hides
  // this entirely — internal pages are the hottest pages and LRU keeps
  // them resident until the pool is too small to hold the churn.
  PointOpts pressure;
  pressure.page_size = 1024;
  pressure.lbp_frames = 64;
  // The tree's ~2k internal pages must fit: 4096 routing slots cost 4 MiB
  // where 4096 LBP frames would pin 4 MiB of page frames PLUS their PLocks
  // — and the LBP needs the leaves far more than the internals.
  pressure.cache_slots = 4096;
  pressure.rows = 200'000;
  pressure.cache_on = false;
  const Point cold_off = RunPoint(pressure, cfg);
  PrintPoint("cache off + LBP pressure", cold_off);
  pressure.cache_on = true;
  const Point cold_on = RunPoint(pressure, cfg);
  PrintPoint("cache on + LBP pressure", cold_on);
  if (cold_off.fabric_ops_per_read > 0) {
    std::printf("  fabric ops/read reduction under LBP pressure: %.1f%%\n",
                100.0 * (1.0 - cold_on.fabric_ops_per_read /
                                   cold_off.fabric_ops_per_read));
  }

  std::printf("\nprocess-wide fabric_ops_per_txn: %.2f\n",
              bench::FabricOpsPerTxn());
  bench::EmitMetricsSidecar("micro_cache");
  return 0;
}
