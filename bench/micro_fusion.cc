// Microbenchmarks (google-benchmark) for the PMFS primitives the paper's
// design arguments rest on (§4): one-sided TSO fetches, remote TIT reads,
// local vs fusion PLock grants, DBP push/fetch, undo appends and log
// forces. Run with zero simulated latency to measure the implementation's
// own CPU cost; the simulated-latency figures are in the fig* benches.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "obs/metrics.h"

namespace polarmp {
namespace {

struct MicroEnv {
  MicroEnv() {
    ClusterOptions options;  // zero latency
    cluster = Cluster::Create(options).value();
    node1 = cluster->AddNode().value();
    node2 = cluster->AddNode().value();
    cluster->CreateTable("micro").status().ok();
    table1 = node1->OpenTable("micro").value();
    table2 = node2->OpenTable("micro").value();
    Session session(node1, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    for (int64_t k = 0; k < 1000; ++k) {
      session.Insert(table1, k, "micro-value").ok();
    }
    session.Commit().ok();
  }

  std::unique_ptr<Cluster> cluster;
  DbNode* node1;
  DbNode* node2;
  TableHandle table1, table2;
};

MicroEnv* Env() {
  static MicroEnv* env = new MicroEnv();
  return env;
}

void BM_TsoCommitTimestamp(benchmark::State& state) {
  auto* tso = Env()->cluster->txn_fusion()->tso();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tso->NextCts(1));
  }
}
BENCHMARK(BM_TsoCommitTimestamp);

void BM_TsoReadWithLinearLamport(benchmark::State& state) {
  auto* client = Env()->node1->tso_client();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->ReadTimestamp());
  }
}
BENCHMARK(BM_TsoReadWithLinearLamport);

void BM_TitLocalRead(benchmark::State& state) {
  auto* tit = Env()->cluster->services()->tit;
  const GTrxId gid = tit->AllocSlot(1, 424242).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tit->ReadSlot(1, gid));
  }
  tit->FreeSlot(gid);
}
BENCHMARK(BM_TitLocalRead);

void BM_TitRemoteRead(benchmark::State& state) {
  auto* tit = Env()->cluster->services()->tit;
  const GTrxId gid = tit->AllocSlot(1, 424243).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tit->ReadSlot(2, gid));  // cross-node
  }
  tit->FreeSlot(gid);
}
BENCHMARK(BM_TitRemoteRead);

void BM_PLockLocalRegrant(benchmark::State& state) {
  auto* plock = Env()->node1->plock_manager();
  const PageId page{999, 1};
  plock->Pin(page, LockMode::kShared, 1000).ok();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plock->Pin(page, LockMode::kShared, 1000));
    plock->Unpin(page);
  }
  plock->Unpin(page);
}
BENCHMARK(BM_PLockLocalRegrant);

void BM_PLockFusionGrant(benchmark::State& state) {
  auto* fusion = Env()->cluster->lock_fusion();
  const PageId page{999, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fusion->AcquirePLock(1, page, LockMode::kExclusive, 1000));
    fusion->ReleasePLock(1, page).ok();
  }
}
BENCHMARK(BM_PLockFusionGrant);

void BM_SessionPointRead(benchmark::State& state) {
  MicroEnv* env = Env();
  Session session(env->node1, IsolationLevel::kReadCommitted);
  session.Begin().ok();
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Get(env->table1, k++ % 1000));
  }
  session.Commit().ok();
}
BENCHMARK(BM_SessionPointRead);

void BM_SessionWriteCommit(benchmark::State& state) {
  MicroEnv* env = Env();
  int64_t k = 100000;
  for (auto _ : state) {
    Session session(env->node1, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    session.Put(env->table1, k++, "bench-write").ok();
    benchmark::DoNotOptimize(session.Commit());
  }
}
BENCHMARK(BM_SessionWriteCommit);

void BM_CrossNodePagePingPong(benchmark::State& state) {
  MicroEnv* env = Env();
  int64_t toggle = 0;
  for (auto _ : state) {
    DbNode* node = (toggle++ % 2 == 0) ? env->node1 : env->node2;
    const TableHandle& table = node == env->node1 ? env->table1 : env->table2;
    Session session(node, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    session.Put(table, 7, "ping-pong").ok();
    benchmark::DoNotOptimize(session.Commit());
  }
}
BENCHMARK(BM_CrossNodePagePingPong);

// One row of the post-run fusion-service table, built entirely from the
// process-wide registry (no per-instance getters): how often the service
// was invoked, what one-sided traffic it generated, and its latency shape.
struct ServiceRow {
  const char* service;
  const char* rpc_counter;       // "" if the service has no RPC family
  const char* remote_reads;      // one-sided reads it issued
  const char* remote_writes;     // one-sided writes
  const char* remote_atomics;    // one-sided fetch-add/CAS
  const char* latency_family;    // representative histogram family
};

void PrintFusionServiceTable() {
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const ServiceRow rows[] = {
      {"lock fusion", "lock_fusion.plock_acquire_rpcs", "", "", "",
       "lock_fusion.plock_wait_ns"},
      {"transaction fusion", "txn_fusion.min_view_reports", "", "",
       "tso.fetches", "txn_fusion.commit_ns"},
      {"buffer fusion", "buffer_fusion.fetches", "", "buffer_fusion.pushes",
       "", ""},
      {"tit", "", "tit.remote_slot_reads", "tit.remote_ref_sets", "",
       "tit.remote_read_ns"},
      {"fabric (all)", "fabric.rpcs", "fabric.remote_reads",
       "fabric.remote_writes", "fabric.remote_atomics", "fabric.rpc_ns"},
  };
  auto cell = [&](const char* family) -> std::string {
    if (family[0] == '\0') return "-";
    return std::to_string(reg.CounterTotal(family));
  };
  std::printf("\nper-fusion-service totals (process-wide registry)\n");
  std::printf("%-20s %12s %12s %12s %12s %12s %12s\n", "service", "rpcs",
              "rd-reads", "rd-writes", "rd-atomics", "p50(ns)", "p99(ns)");
  for (const ServiceRow& row : rows) {
    std::string p50 = "-";
    std::string p99 = "-";
    if (row.latency_family[0] != '\0') {
      const Histogram h = reg.HistogramTotal(row.latency_family);
      if (h.count() > 0) {
        p50 = std::to_string(h.Percentile(50));
        p99 = std::to_string(h.Percentile(99));
      }
    }
    std::printf("%-20s %12s %12s %12s %12s %12s %12s\n", row.service,
                cell(row.rpc_counter).c_str(), cell(row.remote_reads).c_str(),
                cell(row.remote_writes).c_str(),
                cell(row.remote_atomics).c_str(), p50.c_str(), p99.c_str());
  }
}

}  // namespace
}  // namespace polarmp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  polarmp::PrintFusionServiceTable();
  polarmp::bench::EmitMetricsSidecar("micro_fusion");
  return 0;
}
