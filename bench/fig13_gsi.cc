// Figure 13 — global secondary index updates: PolarDB-MP vs shared-nothing.
//
// Paper setup: increase the number of GSIs on a table under sustained
// random insertion; measure throughput and single-thread latency. In
// shared-nothing systems (TiDB/CockroachDB/OceanBase class) GSIs are
// partitioned independently, so every GSI update is a cross-partition
// write requiring two-phase commit. Paper shape: with 1 GSI PolarDB-MP
// loses ~20% throughput while the shared-nothing systems lose 60-70%;
// with 8 GSIs they retain <20% of their no-GSI throughput while
// PolarDB-MP stays "acceptable". Latency follows the same trend.

#include "baselines/shared_nothing.h"
#include "bench/bench_util.h"
#include "workload/driver.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

namespace {

// Random inserts with `num_indexes` indexed columns derived from the key.
class GsiInsertWorkload : public Workload {
 public:
  GsiInsertWorkload(int num_indexes, int nodes)
      : num_indexes_(num_indexes), nodes_(nodes) {}

  Status Setup(Database* db) override {
    POLARMP_RETURN_IF_ERROR(
        db->CreateTable("gsi_table", static_cast<uint32_t>(num_indexes_)));
    // Preload so the base and index trees have realistic fan-out; without
    // this every insert contends on a near-empty tree's root page.
    constexpr int64_t kPreload = 20'000;
    Random rng(99);
    POLARMP_ASSIGN_OR_RETURN(auto conn, db->Connect(0));
    for (int64_t base = 1; base <= kPreload; base += 500) {
      POLARMP_RETURN_IF_ERROR(conn->Begin());
      for (int64_t k = base; k < base + 500 && k <= kPreload; ++k) {
        std::vector<uint64_t> cols;
        for (int i = 0; i < num_indexes_; ++i) {
          cols.push_back(rng.Uniform(1u << 20));
        }
        POLARMP_RETURN_IF_ERROR(conn->Insert(
            "gsi_table", k, EncodeIndexedValue(cols, "order-payload-bytes")));
      }
      POLARMP_RETURN_IF_ERROR(conn->Commit());
    }
    next_key_.store(kPreload + 1);
    return Status::OK();
  }

  Status RunOne(Connection* conn, int node, int worker, Random* rng) override {
    (void)node;
    (void)worker;
    POLARMP_RETURN_IF_ERROR(conn->Begin());
    // Random key over the 24-bit pk budget ("high random insertion
    // pressure"): spreads the B-tree hotspot the way the paper's workload
    // does.
    const int64_t key = 1 + static_cast<int64_t>(rng->Uniform(1u << 24));
    std::vector<uint64_t> cols;
    cols.reserve(num_indexes_);
    for (int i = 0; i < num_indexes_; ++i) {
      cols.push_back(rng->Uniform(1u << 20));
    }
    const Status st = conn->Put(
        "gsi_table", key, EncodeIndexedValue(cols, "order-payload-bytes"));
    if (!st.ok()) return st;
    return conn->Commit();
  }

 private:
  const int num_indexes_;
  const int nodes_;
  std::atomic<uint64_t> next_key_{1};
};

struct Point {
  double tps = 0;
  double p95_ms = 0;
};

Point RunPoint(Database* db, int num_indexes, int nodes,
               const BenchConfig& cfg) {
  GsiInsertWorkload workload(num_indexes, nodes);
  const DriverResult result = SetupAndRun(db, &workload, nodes, cfg);
  return Point{result.throughput,
               static_cast<double>(result.latency.Percentile(95)) / 1e6};
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  const int nodes = std::min(4, cfg.max_nodes);
  PrintFigureHeader("Figure 13",
                    "GSI update cost: PolarDB-MP vs shared-nothing (2PC)");

  std::printf("%-8s %16s %26s\n", "#GSI", "PolarDB-MP", "Shared-Nothing");
  std::printf("%-8s %9s %9s %9s %9s\n", "", "tps", "vs 0", "tps", "vs 0");
  double polar_base = 0, sn_base = 0;
  for (int gsi : {0, 1, 2, 4, 8}) {
    auto polar = PolarMpDatabase::Create(MakeBenchClusterOptions(nodes), nodes);
    if (!polar.ok()) return 1;
    const Point p = RunPoint(polar->get(), gsi, nodes, cfg);
    SharedNothingDatabase::Options snopts;
    snopts.profile = BenchLatencyProfile();
    snopts.nodes = nodes;
    SharedNothingDatabase sn(snopts);
    const Point q = RunPoint(&sn, gsi, nodes, cfg);
    if (gsi == 0) {
      polar_base = p.tps;
      sn_base = q.tps;
    }
    std::printf("%-8d %9.0f %8.0f%% %9.0f %8.0f%%   (p95 %5.2f / %5.2f ms)\n",
                gsi, p.tps, polar_base > 0 ? p.tps / polar_base * 100 : 100,
                q.tps, sn_base > 0 ? q.tps / sn_base * 100 : 100, p.p95_ms,
                q.p95_ms);
  }
  std::printf("\npaper reference: 1 GSI -> PolarDB-MP ~-20%%, shared-nothing "
              "~-60-70%%; 8 GSIs -> shared-nothing <20%% of baseline\n");
  bench::EmitMetricsSidecar("fig13_gsi");
  return 0;
}
