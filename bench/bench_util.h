#ifndef POLARMP_BENCH_BENCH_UTIL_H_
#define POLARMP_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the figure-reproduction benches.
//
// Every bench reads its knobs from the environment so CI can run short
// smoke passes while a full reproduction uses longer windows:
//   POLARMP_BENCH_MEASURE_MS   measurement window per data point (default 1500)
//   POLARMP_BENCH_WARMUP_MS    warmup per data point (default 400)
//   POLARMP_BENCH_THREADS      workers per node (default 2)
//   POLARMP_BENCH_MAX_NODES    cap on the node-count sweep
//
// Loading runs with SetSimTimeScale(0) (instant), measurement at scale 1.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/database.h"
#include "obs/metrics.h"
#include "rdma/fabric.h"
#include "rdma/fault_injector.h"
#include "workload/driver.h"

namespace polarmp {
namespace bench {

struct BenchConfig {
  uint64_t measure_ms = 1'500;
  uint64_t warmup_ms = 400;
  int threads_per_node = 2;
  int max_nodes = 8;

  static BenchConfig FromEnv() {
    BenchConfig cfg;
    if (const char* v = std::getenv("POLARMP_BENCH_MEASURE_MS")) {
      cfg.measure_ms = std::strtoull(v, nullptr, 10);
    }
    if (const char* v = std::getenv("POLARMP_BENCH_WARMUP_MS")) {
      cfg.warmup_ms = std::strtoull(v, nullptr, 10);
    }
    if (const char* v = std::getenv("POLARMP_BENCH_THREADS")) {
      cfg.threads_per_node = std::atoi(v);
    }
    if (const char* v = std::getenv("POLARMP_BENCH_MAX_NODES")) {
      cfg.max_nodes = std::atoi(v);
    }
    return cfg;
  }

  std::vector<int> NodeSweep(std::vector<int> candidates) const {
    std::vector<int> out;
    for (int n : candidates) {
      if (n <= max_nodes) out.push_back(n);
    }
    return out;
  }
};

inline ClusterOptions MakeBenchClusterOptions(int nodes) {
  ClusterOptions options;
  options.latency = BenchLatencyProfile();
  // Keep DSM usage bounded at high node counts.
  options.undo_segment_bytes = 8ull << 20;
  options.dsm_bytes_per_server = (64ull << 20) +
                                 static_cast<uint64_t>(nodes) * (12ull << 20);
  options.node.trx.lock_wait_timeout_ms = 2'000;
  // POLARMP_INDEX_CACHE=0 disables the compute-side index cache (the
  // cache-off ablation every bench can run without a rebuild).
  if (const char* v = std::getenv("POLARMP_INDEX_CACHE")) {
    options.node.cache.enabled = std::atoi(v) != 0;
  }
  // POLARMP_BENCH_LBP_FRAMES shrinks the local buffer pool, modelling the
  // compute node whose working set exceeds its LBP — the regime the index
  // cache targets (routing images are far smaller than the pages an LBP
  // frame would pin, so they survive where the frames do not).
  if (const char* v = std::getenv("POLARMP_BENCH_LBP_FRAMES")) {
    options.node.lbp.frames = static_cast<uint32_t>(std::atoi(v));
  }
  return options;
}

// POLARMP_FAULT_SEED=<nonzero>: arm the fabric's fault injector with the
// seeded DefaultChaosPlan — the chaos CI mode. Called AFTER workload
// loading (load phases use POLARMP_CHECK and run at time-scale 0, where a
// surfaced Busy would abort the bench rather than measure resilience), so
// only the measured traffic sees injected faults. Returns the seed, 0 when
// chaos is off.
inline uint64_t ArmChaosFromEnv(Fabric* fabric) {
  const char* v = std::getenv("POLARMP_FAULT_SEED");
  if (v == nullptr) return 0;
  const uint64_t seed = std::strtoull(v, nullptr, 10);
  if (seed != 0) fabric->fault_injector()->Arm(DefaultChaosPlan(seed));
  return seed;
}

// Fabric round trips (one-sided reads/writes/atomics + RPCs; coalesced
// doorbell passengers excluded — they share a round trip) per committed
// transaction, over the whole process so far. The headline figure for the
// compute-side cache: descents that route through cached internal pages
// skip the per-level Buffer Fusion traffic entirely.
inline double FabricOpsPerTxn() {
  const auto& reg = obs::MetricsRegistry::Global();
  const uint64_t ops = reg.CounterTotal("fabric.remote_reads") +
                       reg.CounterTotal("fabric.remote_writes") +
                       reg.CounterTotal("fabric.remote_atomics") +
                       reg.CounterTotal("fabric.rpcs");
  const uint64_t txns = reg.CounterTotal("trx.commits");
  return txns > 0 ? static_cast<double>(ops) / static_cast<double>(txns)
                  : 0.0;
}

// Loads `workload` at time-scale 0 (instant I/O), then measures at scale 1.
inline DriverResult SetupAndRun(Database* db, Workload* workload, int nodes,
                                const BenchConfig& cfg) {
  SetSimTimeScale(0.0);
  const Status setup = workload->Setup(db);
  SetSimTimeScale(1.0);
  if (!setup.ok()) {
    std::fprintf(stderr, "workload setup failed: %s\n",
                 setup.ToString().c_str());
    std::exit(1);
  }
  DriverOptions opts;
  opts.num_nodes = nodes;
  opts.threads_per_node = cfg.threads_per_node;
  opts.warmup_ms = cfg.warmup_ms;
  opts.duration_ms = cfg.measure_ms;
  return RunWorkload(db, workload, opts);
}

inline void PrintFigureHeader(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("==============================================================\n");
}

inline void PrintRow(const std::string& label, double tps, double relative,
                     double abort_rate, double p95_ms) {
  std::printf("%-34s %10.0f tps   %5.2fx   aborts %4.1f%%   p95 %6.2f ms\n",
              label.c_str(), tps, relative, abort_rate * 100.0, p95_ms);
}

// Dumps the process-wide metrics registry next to the binary's output as
// `<bench_name>.metrics.json` (override the directory with
// POLARMP_METRICS_DIR). Called at the end of every bench main so each run
// leaves a machine-readable sidecar of every `component.instrument` family.
inline void EmitMetricsSidecar(const std::string& bench_name) {
  std::string path = bench_name + ".metrics.json";
  if (const char* dir = std::getenv("POLARMP_METRICS_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  std::string json = obs::MetricsRegistry::Global().SnapshotJson();
  // Splice the derived figures in as a top-level "derived" section so the
  // sidecar carries fabric_ops_per_txn ready-made (no consumer re-derives
  // it from the counter families).
  const size_t close = json.rfind('}');
  if (close != std::string::npos) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"derived\": {\n    \"fabric_ops_per_txn\": %.4f\n  }\n",
                  FabricOpsPerTxn());
    json.insert(close, buf);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics sidecar: cannot open %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nmetrics sidecar: %s\n", path.c_str());
}

}  // namespace bench
}  // namespace polarmp

#endif  // POLARMP_BENCH_BENCH_UTIL_H_
