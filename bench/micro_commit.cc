// Commit-path microbenchmark (ISSUE 6): committed-tps as a function of
// concurrent committers on ONE node.
//
// Each committer thread loops minimal write transactions — a single-row
// Put on a private key, then Commit — so the measured path is dominated by
// the commit pipeline (CTS fetch, redo force, TIT publish) rather than by
// engine work or row conflicts. Under the bench latency profile the redo
// force costs 1.2 ms, so without group commit committed-tps is pinned near
// 1/force-latency per committer; the pipelined group-commit log writer
// amortizes one in-flight force over every queued committer, and the
// opt-in async-commit mode additionally acks the committer at
// force-enqueue time (durability trails the ack; see TrxManager::Options).
//
// Sweeps committers {1, 2, 4, 8} in both modes and prints tps, scaling
// vs. one committer, and the mean force group size (appends per device
// force) for each point. Standard bench env knobs apply
// (POLARMP_BENCH_MEASURE_MS, POLARMP_BENCH_WARMUP_MS); emits the usual
// metrics sidecar, which carries the full log_writer.group_size histogram.

#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "node/session.h"
#include "obs/metrics.h"

namespace polarmp {
namespace {

struct Point {
  int committers = 0;
  double tps = 0;
  double mean_group = 0;  // log appends per device force during measure
};

Point RunPoint(int committers, bool async_commit,
               const bench::BenchConfig& cfg) {
  ClusterOptions options = bench::MakeBenchClusterOptions(1);
  options.node.trx.async_commit = async_commit;
  auto cluster_or = Cluster::Create(options);
  POLARMP_CHECK(cluster_or.ok());
  auto cluster = std::move(cluster_or).value();
  auto node_or = cluster->AddNode();
  POLARMP_CHECK(node_or.ok());
  DbNode* node = node_or.value();
  POLARMP_CHECK(cluster->CreateTable("mc").ok());
  auto table_or = node->OpenTable("mc");
  POLARMP_CHECK(table_or.ok());
  const TableHandle table = table_or.value();

  // Load one private row per committer at time-scale 0 (instant I/O).
  SetSimTimeScale(0.0);
  {
    Session s(node, IsolationLevel::kReadCommitted);
    POLARMP_CHECK(s.Begin().ok());
    for (int i = 0; i < committers; ++i) {
      POLARMP_CHECK(s.Insert(table, 1000 + i, "seed-value").ok());
    }
    POLARMP_CHECK(s.Commit().ok());
  }
  SetSimTimeScale(1.0);
  // Chaos mode: measured traffic (not the load above) runs under the
  // seeded fault plan; the retry/dedup wrappers must absorb every injected
  // transient or the committers start failing and the point reads low.
  bench::ArmChaosFromEnv(cluster->fabric());

  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  workers.reserve(committers);
  for (int i = 0; i < committers; ++i) {
    workers.emplace_back([&, i] {
      Session s(node, IsolationLevel::kReadCommitted);
      uint64_t serial = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!s.Begin().ok()) break;
        const std::string value = "v" + std::to_string(serial++);
        if (!s.Put(table, 1000 + i, value).ok()) continue;
        if (s.Commit().ok() && measuring.load(std::memory_order_relaxed)) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto& reg = obs::MetricsRegistry::Global();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  measuring.store(true);
  const uint64_t appends0 = reg.CounterTotal("log_writer.appends");
  const uint64_t forces0 = reg.CounterTotal("log_writer.forces");
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  const uint64_t count = committed.load();
  const uint64_t appends1 = reg.CounterTotal("log_writer.appends");
  const uint64_t forces1 = reg.CounterTotal("log_writer.forces");
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  Point p;
  p.committers = committers;
  p.tps = static_cast<double>(count) / secs;
  p.mean_group = forces1 > forces0
                     ? static_cast<double>(appends1 - appends0) /
                           static_cast<double>(forces1 - forces0)
                     : 0.0;
  return p;
}

void RunSweep(const char* label, bool async_commit,
              const bench::BenchConfig& cfg) {
  std::printf("\n-- %s --\n", label);
  std::vector<Point> points;
  for (int committers : {1, 2, 4, 8}) {
    points.push_back(RunPoint(committers, async_commit, cfg));
    const Point& p = points.back();
    const double base = points.front().tps;
    std::printf(
        "  %d committer(s): %10.0f tps   %5.2fx vs 1   mean group %.2f\n",
        committers, p.tps, base > 0 ? p.tps / base : 0.0, p.mean_group);
  }
}

void PrintGroupSizeHistogram() {
  const Histogram h =
      obs::MetricsRegistry::Global().HistogramTotal("log_writer.group_size");
  if (h.count() == 0) return;
  std::printf(
      "\nlog_writer.group_size (all points): count=%llu mean=%.2f "
      "p50=%llu p90=%llu p99=%llu max=%llu\n",
      static_cast<unsigned long long>(h.count()), h.Mean(),
      static_cast<unsigned long long>(h.Percentile(50)),
      static_cast<unsigned long long>(h.Percentile(90)),
      static_cast<unsigned long long>(h.Percentile(99)),
      static_cast<unsigned long long>(h.max()));
}

}  // namespace
}  // namespace polarmp

int main() {
  using namespace polarmp;
  const bench::BenchConfig cfg = bench::BenchConfig::FromEnv();
  bench::PrintFigureHeader("micro_commit",
                           "commit-path scaling with concurrent committers");
  std::printf("force latency: %.1f ms (BenchLatencyProfile log_append_ns)\n",
              BenchLatencyProfile().log_append_ns / 1e6);
  RunSweep("sync commit (blocking Session::Commit)", /*async_commit=*/false,
           cfg);
  RunSweep("async commit (acked at force enqueue, trx.async_commit)",
           /*async_commit=*/true, cfg);
  PrintGroupSizeHistogram();
  bench::EmitMetricsSidecar("micro_commit");
  return 0;
}
