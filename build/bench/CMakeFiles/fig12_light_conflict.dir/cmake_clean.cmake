file(REMOVE_RECURSE
  "CMakeFiles/fig12_light_conflict.dir/fig12_light_conflict.cc.o"
  "CMakeFiles/fig12_light_conflict.dir/fig12_light_conflict.cc.o.d"
  "fig12_light_conflict"
  "fig12_light_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_light_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
