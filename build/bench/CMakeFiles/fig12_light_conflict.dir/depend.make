# Empty dependencies file for fig12_light_conflict.
# This may be replaced when dependencies are built.
