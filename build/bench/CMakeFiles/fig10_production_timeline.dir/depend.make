# Empty dependencies file for fig10_production_timeline.
# This may be replaced when dependencies are built.
