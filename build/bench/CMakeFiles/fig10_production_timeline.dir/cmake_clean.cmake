file(REMOVE_RECURSE
  "CMakeFiles/fig10_production_timeline.dir/fig10_production_timeline.cc.o"
  "CMakeFiles/fig10_production_timeline.dir/fig10_production_timeline.cc.o.d"
  "fig10_production_timeline"
  "fig10_production_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_production_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
