# Empty compiler generated dependencies file for fig9_tpcc_large.
# This may be replaced when dependencies are built.
