file(REMOVE_RECURSE
  "CMakeFiles/micro_fusion.dir/micro_fusion.cc.o"
  "CMakeFiles/micro_fusion.dir/micro_fusion.cc.o.d"
  "micro_fusion"
  "micro_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
