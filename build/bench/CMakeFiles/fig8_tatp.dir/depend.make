# Empty dependencies file for fig8_tatp.
# This may be replaced when dependencies are built.
