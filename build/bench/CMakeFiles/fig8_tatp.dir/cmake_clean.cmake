file(REMOVE_RECURSE
  "CMakeFiles/fig8_tatp.dir/fig8_tatp.cc.o"
  "CMakeFiles/fig8_tatp.dir/fig8_tatp.cc.o.d"
  "fig8_tatp"
  "fig8_tatp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tatp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
