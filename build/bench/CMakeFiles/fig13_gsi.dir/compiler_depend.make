# Empty compiler generated dependencies file for fig13_gsi.
# This may be replaced when dependencies are built.
