file(REMOVE_RECURSE
  "CMakeFiles/fig13_gsi.dir/fig13_gsi.cc.o"
  "CMakeFiles/fig13_gsi.dir/fig13_gsi.cc.o.d"
  "fig13_gsi"
  "fig13_gsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_gsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
