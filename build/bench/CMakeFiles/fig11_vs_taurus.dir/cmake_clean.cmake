file(REMOVE_RECURSE
  "CMakeFiles/fig11_vs_taurus.dir/fig11_vs_taurus.cc.o"
  "CMakeFiles/fig11_vs_taurus.dir/fig11_vs_taurus.cc.o.d"
  "fig11_vs_taurus"
  "fig11_vs_taurus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vs_taurus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
