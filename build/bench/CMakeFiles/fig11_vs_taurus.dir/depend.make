# Empty dependencies file for fig11_vs_taurus.
# This may be replaced when dependencies are built.
