# Empty dependencies file for fig7_sysbench_scaling.
# This may be replaced when dependencies are built.
