file(REMOVE_RECURSE
  "CMakeFiles/fig7_sysbench_scaling.dir/fig7_sysbench_scaling.cc.o"
  "CMakeFiles/fig7_sysbench_scaling.dir/fig7_sysbench_scaling.cc.o.d"
  "fig7_sysbench_scaling"
  "fig7_sysbench_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sysbench_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
