file(REMOVE_RECURSE
  "libpolarmp.a"
)
