# Empty compiler generated dependencies file for polarmp.
# This may be replaced when dependencies are built.
