
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aurora_mm.cc" "src/CMakeFiles/polarmp.dir/baselines/aurora_mm.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/baselines/aurora_mm.cc.o.d"
  "/root/repo/src/baselines/database.cc" "src/CMakeFiles/polarmp.dir/baselines/database.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/baselines/database.cc.o.d"
  "/root/repo/src/baselines/shared_nothing.cc" "src/CMakeFiles/polarmp.dir/baselines/shared_nothing.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/baselines/shared_nothing.cc.o.d"
  "/root/repo/src/baselines/sim_store.cc" "src/CMakeFiles/polarmp.dir/baselines/sim_store.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/baselines/sim_store.cc.o.d"
  "/root/repo/src/baselines/single_primary.cc" "src/CMakeFiles/polarmp.dir/baselines/single_primary.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/baselines/single_primary.cc.o.d"
  "/root/repo/src/baselines/taurus_mm.cc" "src/CMakeFiles/polarmp.dir/baselines/taurus_mm.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/baselines/taurus_mm.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/polarmp.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/standby.cc" "src/CMakeFiles/polarmp.dir/cluster/standby.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/cluster/standby.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/polarmp.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/polarmp.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/common/logging.cc.o.d"
  "/root/repo/src/common/sim_latency.cc" "src/CMakeFiles/polarmp.dir/common/sim_latency.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/common/sim_latency.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/polarmp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/common/status.cc.o.d"
  "/root/repo/src/dsm/dsm.cc" "src/CMakeFiles/polarmp.dir/dsm/dsm.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/dsm/dsm.cc.o.d"
  "/root/repo/src/engine/btree.cc" "src/CMakeFiles/polarmp.dir/engine/btree.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/engine/btree.cc.o.d"
  "/root/repo/src/engine/buffer_pool.cc" "src/CMakeFiles/polarmp.dir/engine/buffer_pool.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/engine/buffer_pool.cc.o.d"
  "/root/repo/src/engine/mtr.cc" "src/CMakeFiles/polarmp.dir/engine/mtr.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/engine/mtr.cc.o.d"
  "/root/repo/src/engine/page.cc" "src/CMakeFiles/polarmp.dir/engine/page.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/engine/page.cc.o.d"
  "/root/repo/src/engine/plock_manager.cc" "src/CMakeFiles/polarmp.dir/engine/plock_manager.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/engine/plock_manager.cc.o.d"
  "/root/repo/src/engine/row.cc" "src/CMakeFiles/polarmp.dir/engine/row.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/engine/row.cc.o.d"
  "/root/repo/src/engine/undo.cc" "src/CMakeFiles/polarmp.dir/engine/undo.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/engine/undo.cc.o.d"
  "/root/repo/src/node/catalog.cc" "src/CMakeFiles/polarmp.dir/node/catalog.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/node/catalog.cc.o.d"
  "/root/repo/src/node/db_node.cc" "src/CMakeFiles/polarmp.dir/node/db_node.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/node/db_node.cc.o.d"
  "/root/repo/src/node/session.cc" "src/CMakeFiles/polarmp.dir/node/session.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/node/session.cc.o.d"
  "/root/repo/src/pmfs/buffer_fusion.cc" "src/CMakeFiles/polarmp.dir/pmfs/buffer_fusion.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/pmfs/buffer_fusion.cc.o.d"
  "/root/repo/src/pmfs/lock_fusion.cc" "src/CMakeFiles/polarmp.dir/pmfs/lock_fusion.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/pmfs/lock_fusion.cc.o.d"
  "/root/repo/src/pmfs/transaction_fusion.cc" "src/CMakeFiles/polarmp.dir/pmfs/transaction_fusion.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/pmfs/transaction_fusion.cc.o.d"
  "/root/repo/src/pmfs/tso.cc" "src/CMakeFiles/polarmp.dir/pmfs/tso.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/pmfs/tso.cc.o.d"
  "/root/repo/src/rdma/fabric.cc" "src/CMakeFiles/polarmp.dir/rdma/fabric.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/rdma/fabric.cc.o.d"
  "/root/repo/src/rdma/rpc.cc" "src/CMakeFiles/polarmp.dir/rdma/rpc.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/rdma/rpc.cc.o.d"
  "/root/repo/src/storage/log_store.cc" "src/CMakeFiles/polarmp.dir/storage/log_store.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/storage/log_store.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/CMakeFiles/polarmp.dir/storage/page_store.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/storage/page_store.cc.o.d"
  "/root/repo/src/txn/tit.cc" "src/CMakeFiles/polarmp.dir/txn/tit.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/txn/tit.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/polarmp.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/txn/transaction.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/polarmp.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/log_writer.cc" "src/CMakeFiles/polarmp.dir/wal/log_writer.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/wal/log_writer.cc.o.d"
  "/root/repo/src/wal/recovery.cc" "src/CMakeFiles/polarmp.dir/wal/recovery.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/wal/recovery.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/polarmp.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/production.cc" "src/CMakeFiles/polarmp.dir/workload/production.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/workload/production.cc.o.d"
  "/root/repo/src/workload/sysbench.cc" "src/CMakeFiles/polarmp.dir/workload/sysbench.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/workload/sysbench.cc.o.d"
  "/root/repo/src/workload/tatp.cc" "src/CMakeFiles/polarmp.dir/workload/tatp.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/workload/tatp.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/polarmp.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/polarmp.dir/workload/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
