# Empty dependencies file for polarmp.
# This may be replaced when dependencies are built.
