
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/polarmp_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/polarmp_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/buffer_fusion_test.cc" "tests/CMakeFiles/polarmp_tests.dir/buffer_fusion_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/buffer_fusion_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/polarmp_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/engine_unit_test.cc" "tests/CMakeFiles/polarmp_tests.dir/engine_unit_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/engine_unit_test.cc.o.d"
  "/root/repo/tests/fabric_test.cc" "tests/CMakeFiles/polarmp_tests.dir/fabric_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/fabric_test.cc.o.d"
  "/root/repo/tests/failure_test.cc" "tests/CMakeFiles/polarmp_tests.dir/failure_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/failure_test.cc.o.d"
  "/root/repo/tests/isolation_test.cc" "tests/CMakeFiles/polarmp_tests.dir/isolation_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/isolation_test.cc.o.d"
  "/root/repo/tests/lock_fusion_test.cc" "tests/CMakeFiles/polarmp_tests.dir/lock_fusion_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/lock_fusion_test.cc.o.d"
  "/root/repo/tests/multi_node_test.cc" "tests/CMakeFiles/polarmp_tests.dir/multi_node_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/multi_node_test.cc.o.d"
  "/root/repo/tests/page_test.cc" "tests/CMakeFiles/polarmp_tests.dir/page_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/page_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/polarmp_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/recovery_test.cc" "tests/CMakeFiles/polarmp_tests.dir/recovery_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/recovery_test.cc.o.d"
  "/root/repo/tests/standby_test.cc" "tests/CMakeFiles/polarmp_tests.dir/standby_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/standby_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/polarmp_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/tit_test.cc" "tests/CMakeFiles/polarmp_tests.dir/tit_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/tit_test.cc.o.d"
  "/root/repo/tests/txn_test.cc" "tests/CMakeFiles/polarmp_tests.dir/txn_test.cc.o" "gcc" "tests/CMakeFiles/polarmp_tests.dir/txn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/polarmp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
