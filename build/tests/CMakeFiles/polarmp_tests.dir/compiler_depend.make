# Empty compiler generated dependencies file for polarmp_tests.
# This may be replaced when dependencies are built.
