file(REMOVE_RECURSE
  "CMakeFiles/secondary_index.dir/secondary_index.cpp.o"
  "CMakeFiles/secondary_index.dir/secondary_index.cpp.o.d"
  "secondary_index"
  "secondary_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secondary_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
