# Empty compiler generated dependencies file for secondary_index.
# This may be replaced when dependencies are built.
