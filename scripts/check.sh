#!/usr/bin/env bash
# CI matrix driver. One mode per invocation, or everything:
#
#   scripts/check.sh            # plain: RelWithDebInfo build + ctest
#   scripts/check.sh plain      # same, spelled out
#   scripts/check.sh lint       # build polarlint, prove it on the fixture
#                               # corpus, lint the tree + audit tsan.supp;
#                               # prints per-pass timing and the per-rule
#                               # findings table, validates the JSON
#                               # findings sidecar
#   scripts/check.sh format     # clang-format --dry-run (SKIP if missing)
#   scripts/check.sh tidy       # clang-tidy build (SKIP if missing)
#   scripts/check.sh tsan       # ThreadSanitizer build + tests
#   scripts/check.sh asan       # AddressSanitizer build + tests
#   scripts/check.sh ubsan      # UBSan build + tests (no-recover: hard fail)
#   scripts/check.sh wthread    # clang -Werror=thread-safety build + tests
#                               # (SKIP if clang is missing)
#   scripts/check.sh smoke      # micro_commit commit-path smoke run with a
#                               # short measure window; fails if the bench
#                               # errors or the metrics sidecar is missing;
#                               # also runs the bank_transfer example whose
#                               # exit code checks balance conservation
#   scripts/check.sh chaos      # seeded fault-injection soak: benches under
#                               # DefaultChaosPlan(42) plus an online node
#                               # takeover; sidecars must show faults fired
#   scripts/check.sh --all      # every mode above, in order; fail fast
#
# (legacy spellings `thread`/`address` are accepted for tsan/asan.)
#
# Each mode configures its own build directory (build, build-lint,
# build-tsan, ...) so sanitizer and tooling caches never collide. Modes
# that need a tool the host lacks (clang-format, clang-tidy) print SKIP and
# exit 0 — the matrix stays green on toolchains that only carry gcc.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

# halt_on_error makes a sanitizer report fail the test that produced it;
# tsan.supp whitelists the by-design seqlock races. detect_deadlocks=0:
# the per-frame page latches form ordering cycles by design (deadlock
# freedom comes from the B-tree descent discipline, which the
# potential-deadlock detector cannot model; the lock-rank checker enforces
# the order everywhere else); race detection is unaffected.
export TSAN_OPTIONS="halt_on_error=1 detect_deadlocks=0 suppressions=$PWD/tsan.supp ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1 ${UBSAN_OPTIONS:-}"

build_and_test() {  # <build-dir> [extra cmake args...]
  local dir="$1"; shift
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_mode() {
  local mode="$1"
  echo "==== check.sh: ${mode} ===="
  case "${mode}" in
    plain)
      build_and_test build
      ;;
    lint)
      # The lint/lint_selftest/lint_perf ctest targets also run in every
      # full suite; this mode is the fast loop AND the reporting surface:
      # running the binary directly (instead of through ctest) shows the
      # per-pass timing and per-rule findings tables, enforces the perf
      # bound, and leaves the findings sidecar where CI can diff it.
      cmake -B build-lint -S .
      cmake --build build-lint -j "${JOBS}" --target polarlint
      ./build-lint/tools/polarlint/polarlint \
        --self-test tools/polarlint/fixtures
      local lint_sidecar="build-lint/polarlint.findings.json"
      ./build-lint/tools/polarlint/polarlint --root . \
        --json "${lint_sidecar}" --tsan-supp tsan.supp \
        --max-wall-ms 20000 src
      # The sidecar is load-bearing (the lock-order edge list ships in it),
      # so its absence or an empty schema is a failure, not a shrug.
      if [[ ! -s "${lint_sidecar}" ]]; then
        echo "FAIL: findings sidecar ${lint_sidecar} missing or empty" >&2
        return 1
      fi
      if ! grep -q '"schema": "polarlint.findings.v1"' "${lint_sidecar}"; then
        echo "FAIL: ${lint_sidecar} lacks the polarlint.findings.v1 tag" >&2
        return 1
      fi
      if ! grep -q '"lock_order"' "${lint_sidecar}"; then
        echo "FAIL: ${lint_sidecar} lacks the lock_order edge list" >&2
        return 1
      fi
      echo "lint OK: sidecar ${lint_sidecar}"
      ;;
    format)
      if ! command -v clang-format >/dev/null 2>&1; then
        echo "SKIP: clang-format not installed"
        return 0
      fi
      # shellcheck disable=SC2046
      clang-format --dry-run -Werror \
        $(find src tests bench examples tools -name '*.h' -o -name '*.cc')
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "SKIP: clang-tidy not installed"
        return 0
      fi
      cmake -B build-tidy -S . -DPOLARMP_TIDY=ON
      cmake --build build-tidy -j "${JOBS}"
      ;;
    tsan)
      build_and_test build-tsan -DPOLARMP_SANITIZE=thread
      ;;
    asan)
      build_and_test build-asan -DPOLARMP_SANITIZE=address
      ;;
    ubsan)
      build_and_test build-ubsan -DPOLARMP_SANITIZE=undefined
      ;;
    wthread)
      # Clang's thread-safety analysis over the capability annotations
      # (common/thread_annotations.h). The annotations are no-ops under gcc,
      # so this is the one mode that actually proves them.
      if ! command -v clang++ >/dev/null 2>&1; then
        echo "SKIP: clang++ not installed (thread-safety analysis needs clang)"
        return 0
      fi
      CC=clang CXX=clang++ cmake -B build-wthread -S . \
        -DPOLARMP_THREAD_SAFETY=ON
      cmake --build build-wthread -j "${JOBS}"
      ctest --test-dir build-wthread --output-on-failure -j "${JOBS}"
      ;;
    smoke)
      # Commit-pipeline smoke: the micro_commit bench at a short measure
      # window exercises group formation, async commit and the finalizer
      # under real thread interleavings, and must emit its metrics sidecar
      # (the group-size histogram rides in it).
      cmake -B build -S .
      cmake --build build -j "${JOBS}" --target micro_commit
      local smoke_dir="build/smoke"
      mkdir -p "${smoke_dir}"
      POLARMP_BENCH_MEASURE_MS=300 POLARMP_BENCH_WARMUP_MS=100 \
        POLARMP_METRICS_DIR="${smoke_dir}" ./build/bench/micro_commit
      local sidecar="${smoke_dir}/micro_commit.metrics.json"
      if [[ ! -s "${sidecar}" ]]; then
        echo "FAIL: metrics sidecar ${sidecar} missing or empty" >&2
        return 1
      fi
      if ! grep -q 'log_writer.group_size' "${sidecar}"; then
        echo "FAIL: ${sidecar} lacks the log_writer.group_size histogram" >&2
        return 1
      fi
      # Index-cache smoke: the micro_cache bench sweeps cache off/on plus
      # an invalidation-churn phase; its sidecar must carry the cache
      # counter families and the derived fabric-ops figure.
      cmake --build build -j "${JOBS}" --target micro_cache
      POLARMP_BENCH_MEASURE_MS=300 POLARMP_BENCH_WARMUP_MS=100 \
        POLARMP_METRICS_DIR="${smoke_dir}" ./build/bench/micro_cache
      local cache_sidecar="${smoke_dir}/micro_cache.metrics.json"
      if [[ ! -s "${cache_sidecar}" ]]; then
        echo "FAIL: metrics sidecar ${cache_sidecar} missing or empty" >&2
        return 1
      fi
      if ! grep -q 'index_cache.hits' "${cache_sidecar}"; then
        echo "FAIL: ${cache_sidecar} lacks the index_cache counters" >&2
        return 1
      fi
      if ! grep -q 'fabric_ops_per_txn' "${cache_sidecar}"; then
        echo "FAIL: ${cache_sidecar} lacks derived fabric_ops_per_txn" >&2
        return 1
      fi
      # Bank-transfer invariant: the example's exit code IS its self-check
      # (total balance exactly conserved across concurrent cross-node
      # transfers). Two seeds keep the smoke fast; EXPERIMENTS.md records
      # the 20-seed sweep.
      cmake --build build -j "${JOBS}" --target bank_transfer
      for seed in 17 23; do
        POLARMP_BANK_SEED="${seed}" ./build/examples/bank_transfer
      done
      echo "smoke OK: sidecars ${sidecar} ${cache_sidecar}"
      ;;
    chaos)
      # Seeded fault-plan soak. The fabric injects transient unavailability,
      # timeouts, delayed/duplicated writes and torn seqlocked writes at the
      # DefaultChaosPlan(42) rates while micro_commit runs its normal
      # sweep, and fig15 additionally crashes a node under load and has the
      # survivor take it over online. Green means the retry/backoff wrappers
      # absorbed every transient (the benches exit 0) and the sidecars
      # prove faults actually fired — a chaos run where nothing was
      # injected is a configuration bug, not a pass.
      cmake -B build -S .
      cmake --build build -j "${JOBS}" --target micro_commit
      cmake --build build -j "${JOBS}" --target fig15_recovery
      local chaos_dir="build/chaos"
      mkdir -p "${chaos_dir}"
      POLARMP_FAULT_SEED=42 POLARMP_BENCH_MEASURE_MS=300 \
        POLARMP_BENCH_WARMUP_MS=100 POLARMP_METRICS_DIR="${chaos_dir}" \
        ./build/bench/micro_commit
      local mc_sidecar="${chaos_dir}/micro_commit.metrics.json"
      if ! grep -Eq '"fabric\.faults_injected": [1-9]' "${mc_sidecar}"; then
        echo "FAIL: ${mc_sidecar}: no faults injected under chaos" >&2
        return 1
      fi
      if ! grep -Eq '"fabric\.retries": [1-9]' "${mc_sidecar}"; then
        echo "FAIL: ${mc_sidecar}: no retries under chaos" >&2
        return 1
      fi
      # Reply-loss dedup hits are plan-rate dependent, so require the
      # counter family, not a count.
      if ! grep -q 'fabric.rpc_dedup_hits' "${mc_sidecar}"; then
        echo "FAIL: ${mc_sidecar} lacks fabric.rpc_dedup_hits" >&2
        return 1
      fi
      POLARMP_FAULT_SEED=42 POLARMP_BENCH_CRASH_MS=1500 \
        POLARMP_METRICS_DIR="${chaos_dir}" ./build/bench/fig15_recovery
      local f15_sidecar="${chaos_dir}/fig15_recovery.metrics.json"
      if ! grep -Eq '"cluster\.takeovers": [1-9]' "${f15_sidecar}"; then
        echo "FAIL: ${f15_sidecar}: online takeover did not run" >&2
        return 1
      fi
      if ! grep -Eq '"fabric\.faults_injected": [1-9]' "${f15_sidecar}"; then
        echo "FAIL: ${f15_sidecar}: no faults injected under chaos" >&2
        return 1
      fi
      echo "chaos OK: sidecars ${mc_sidecar} ${f15_sidecar}"
      ;;
    *)
      echo "usage: $0 [plain|lint|format|tidy|tsan|asan|ubsan|wthread|smoke|chaos|--all]" >&2
      return 2
      ;;
  esac
}

MODE="${1:-plain}"
case "${MODE}" in
  thread) MODE=tsan ;;
  address) MODE=asan ;;
esac

if [[ "${MODE}" == "--all" ]]; then
  for m in format lint plain smoke chaos wthread ubsan asan tsan tidy; do
    run_mode "${m}"
  done
  echo "==== check.sh: all modes passed ===="
else
  run_mode "${MODE}"
fi
