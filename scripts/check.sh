#!/usr/bin/env bash
# Tier-1 gate: build + ctest, optionally under a sanitizer.
#
#   scripts/check.sh            # plain RelWithDebInfo build + tests
#   scripts/check.sh thread     # TSan build + tests (fails on any report)
#   scripts/check.sh address    # ASan build + tests
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-}"
BUILD_DIR="build"
CMAKE_ARGS=()
if [[ -n "${SAN}" ]]; then
  case "${SAN}" in
    thread|address) ;;
    *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
  esac
  BUILD_DIR="build-${SAN}"
  CMAKE_ARGS+=("-DPOLARMP_SANITIZE=${SAN}")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error makes a sanitizer report fail the test that produced it;
# tsan.supp whitelists the by-design seqlock races. detect_deadlocks=0:
# the per-frame page latches form ordering cycles by design (deadlock
# freedom comes from the B-tree descent discipline, which the
# potential-deadlock detector cannot model); race detection is unaffected.
export TSAN_OPTIONS="halt_on_error=1 detect_deadlocks=0 suppressions=$PWD/tsan.supp ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
